//! The decision event record: one algorithmic verdict of the collection
//! pipeline.
//!
//! Probe events say what went on the wire; decision events say what the
//! algorithms concluded from it — which heuristic fired, on which
//! address, with what evidence. Together they form the flight-recorder
//! stream that `tnet explain` renders as an inference tree and that
//! lets a replayed run be audited without re-probing anything.

use std::fmt;

use inet::Addr;
use serde_json::{json, Value};

use crate::event::{Cause, Phase};

/// What the pipeline concluded at one decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecisionVerdict {
    /// The subject address was admitted as a subnet member.
    Accepted,
    /// The subject was admitted as the subnet's single contra-pivot
    /// (H3).
    AcceptedContraPivot,
    /// The subject was examined and rejected (no heuristic stopped the
    /// growth; the address is just not a member).
    Rejected,
    /// A heuristic fired and exploration stopped, shrinking the subnet
    /// back one prefix level (`cause` names the heuristic).
    StoppedAndShrunk,
    /// The subject was designated the hop's pivot address.
    Pivot,
    /// Positioning concluded the hop is on the probing path.
    OnPath,
    /// Positioning concluded the hop is off-path.
    OffPath,
    /// The hop was resolved from the cross-session subnet cache.
    CacheHit,
    /// The cross-session cache matched but reuse was declined.
    CacheSkip,
    /// The hop address already belonged to an earlier subnet;
    /// exploration was skipped.
    Repeated,
    /// Exploration stopped growing because the subnet fell below half
    /// utilization (§3.5).
    Underutilized,
    /// H9 boundary reduction halved the collected prefix.
    BoundaryReduced,
    /// Exploration finished and the subnet was collected as-is.
    Collected,
    /// The hop's observations were degraded by fault-attributed
    /// timeouts (`evidence` carries the cause).
    Degraded,
    /// The per-hop fault budget tripped and the hop was abandoned.
    Abandoned,
}

impl DecisionVerdict {
    /// Every verdict, in declaration order.
    pub const ALL: [DecisionVerdict; 15] = [
        DecisionVerdict::Accepted,
        DecisionVerdict::AcceptedContraPivot,
        DecisionVerdict::Rejected,
        DecisionVerdict::StoppedAndShrunk,
        DecisionVerdict::Pivot,
        DecisionVerdict::OnPath,
        DecisionVerdict::OffPath,
        DecisionVerdict::CacheHit,
        DecisionVerdict::CacheSkip,
        DecisionVerdict::Repeated,
        DecisionVerdict::Underutilized,
        DecisionVerdict::BoundaryReduced,
        DecisionVerdict::Collected,
        DecisionVerdict::Degraded,
        DecisionVerdict::Abandoned,
    ];

    /// Stable snake_case label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            DecisionVerdict::Accepted => "accepted",
            DecisionVerdict::AcceptedContraPivot => "accepted_contra_pivot",
            DecisionVerdict::Rejected => "rejected",
            DecisionVerdict::StoppedAndShrunk => "stopped_and_shrunk",
            DecisionVerdict::Pivot => "pivot",
            DecisionVerdict::OnPath => "on_path",
            DecisionVerdict::OffPath => "off_path",
            DecisionVerdict::CacheHit => "cache_hit",
            DecisionVerdict::CacheSkip => "cache_skip",
            DecisionVerdict::Repeated => "repeated",
            DecisionVerdict::Underutilized => "underutilized",
            DecisionVerdict::BoundaryReduced => "boundary_reduced",
            DecisionVerdict::Collected => "collected",
            DecisionVerdict::Degraded => "degraded",
            DecisionVerdict::Abandoned => "abandoned",
        }
    }

    /// Parses a [`DecisionVerdict::label`] rendering.
    pub fn from_label(s: &str) -> Option<DecisionVerdict> {
        DecisionVerdict::ALL.into_iter().find(|v| v.label() == s)
    }
}

impl fmt::Display for DecisionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One verdict of the collection pipeline, with full attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionEvent {
    /// Session (target index) attribution, mirroring
    /// [`crate::ProbeEvent::session`].
    pub session: Option<u64>,
    /// Hop number (1-based TTL) the decision belongs to, 0 when the
    /// emitting code has no hop in scope.
    pub hop: u8,
    /// The session phase the decision was made in.
    pub phase: Option<Phase>,
    /// The algorithm step or heuristic that produced the verdict.
    pub cause: Option<Cause>,
    /// The address the verdict is about (candidate member, pivot, hop
    /// address), when one exists.
    pub subject: Option<Addr>,
    /// What was concluded.
    pub verdict: DecisionVerdict,
    /// Free-form human-readable evidence ("mate 10.0.1.3 expired at
    /// d-1", "fault budget tripped after 3 timeouts", ...).
    pub evidence: String,
}

impl DecisionEvent {
    /// Renders the decision as one JSON object. The `"type"` key
    /// distinguishes it from probe lines in an exchange log.
    pub fn to_json(&self) -> Value {
        json!({
            "type": "decision",
            "session": self.session,
            "hop": self.hop,
            "phase": self.phase.map(Phase::label),
            "cause": self.cause.map(Cause::label),
            "subject": self.subject.map(|a| a.to_string()),
            "verdict": self.verdict.label(),
            "evidence": self.evidence,
        })
    }

    /// Parses a decision back from its [`DecisionEvent::to_json`]
    /// rendering.
    pub fn from_json(v: &Value) -> Result<DecisionEvent, String> {
        let session = match &v["session"] {
            Value::Null => None,
            s => Some(s.as_u64().ok_or_else(|| "session: expected unsigned integer".to_string())?),
        };
        let hop = v["hop"].as_u64().ok_or_else(|| "hop: expected unsigned integer".to_string())?;
        if hop > u8::MAX as u64 {
            return Err(format!("hop: {hop} out of range"));
        }
        let phase = match &v["phase"] {
            Value::Null => None,
            p => Some(
                p.as_str()
                    .and_then(Phase::from_label)
                    .ok_or_else(|| format!("phase: unknown value {p}"))?,
            ),
        };
        let cause = match &v["cause"] {
            Value::Null => None,
            c => Some(
                c.as_str()
                    .and_then(Cause::from_label)
                    .ok_or_else(|| format!("cause: unknown value {c}"))?,
            ),
        };
        let subject = match &v["subject"] {
            Value::Null => None,
            s => Some(
                s.as_str()
                    .ok_or_else(|| "subject: expected string".to_string())?
                    .parse()
                    .map_err(|e| format!("subject: {e}"))?,
            ),
        };
        let verdict_label =
            v["verdict"].as_str().ok_or_else(|| "verdict: expected string".to_string())?;
        Ok(DecisionEvent {
            session,
            hop: hop as u8,
            phase,
            cause,
            subject,
            verdict: DecisionVerdict::from_label(verdict_label)
                .ok_or_else(|| format!("verdict: unknown value {verdict_label:?}"))?,
            evidence: v["evidence"].as_str().unwrap_or_default().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionEvent {
        DecisionEvent {
            session: Some(2),
            hop: 4,
            phase: Some(Phase::Explore),
            cause: Some(Cause::H6),
            subject: Some("10.0.3.7".parse().unwrap()),
            verdict: DecisionVerdict::StoppedAndShrunk,
            evidence: "stranger 10.0.3.7 expired the probe: fixed entry point violated".into(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let d = sample();
        assert_eq!(DecisionEvent::from_json(&d.to_json()).unwrap(), d);

        let bare = DecisionEvent {
            session: None,
            hop: 0,
            phase: None,
            cause: None,
            subject: None,
            verdict: DecisionVerdict::Collected,
            evidence: String::new(),
        };
        assert_eq!(DecisionEvent::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn json_carries_the_type_tag() {
        assert_eq!(sample().to_json()["type"].as_str(), Some("decision"));
    }

    #[test]
    fn from_json_rejects_bad_fields() {
        let mut v = sample().to_json();
        v["verdict"] = json!("vibes");
        assert!(DecisionEvent::from_json(&v).unwrap_err().contains("verdict"));

        let mut v = sample().to_json();
        v["hop"] = json!(4000);
        assert!(DecisionEvent::from_json(&v).unwrap_err().contains("hop"));

        let mut v = sample().to_json();
        v["cause"] = json!("h99");
        assert!(DecisionEvent::from_json(&v).unwrap_err().contains("cause"));
    }

    #[test]
    fn labels_roundtrip_for_all_verdicts() {
        for v in DecisionVerdict::ALL {
            assert_eq!(DecisionVerdict::from_label(v.label()), Some(v));
        }
    }
}
