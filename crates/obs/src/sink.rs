//! Event sinks: where probe events go.

use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};

use crate::decision::DecisionEvent;
use crate::event::ProbeEvent;

/// A consumer of probe events.
///
/// Sinks receive every wire attempt a recorder-carrying prober makes.
/// Implementations should be cheap per call; expensive work belongs
/// behind buffering (see [`JsonlSink`]).
pub trait EventSink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &ProbeEvent);

    /// Consumes one decision event. Defaults to a no-op: most sinks
    /// (including [`JsonlSink`], whose probe-log format promises one
    /// line per wire probe) only care about wire traffic. The exchange
    /// log overrides this to interleave decisions with probes.
    fn emit_decision(&mut self, _decision: &DecisionEvent) {}

    /// Flushes any buffered output; called at session boundaries.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Drops every event. Useful to exercise the recording path with no
/// observable output (e.g. overhead measurements).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &ProbeEvent) {}
}

/// Collects events in memory behind a shared handle — the test sink.
///
/// Cloning shares the underlying buffer, so a test can keep one clone
/// and hand the other to a [`SinkHandle`]:
///
/// ```
/// use obs::{ProbeEvent, VecSink, EventSink};
/// let sink = VecSink::new();
/// let reader = sink.clone();
/// // ... install `sink`, run a session ...
/// assert_eq!(reader.events().len(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<ProbeEvent>>>,
    decisions: Arc<Mutex<Vec<DecisionEvent>>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Snapshot of everything collected so far.
    pub fn events(&self) -> Vec<ProbeEvent> {
        self.events.lock().expect("VecSink lock").clone()
    }

    /// Snapshot of the decisions collected so far.
    pub fn decisions(&self) -> Vec<DecisionEvent> {
        self.decisions.lock().expect("VecSink lock").clone()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("VecSink lock").len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, event: &ProbeEvent) {
        self.events.lock().expect("VecSink lock").push(event.clone());
    }

    fn emit_decision(&mut self, decision: &DecisionEvent) {
        self.decisions.lock().expect("VecSink lock").push(decision.clone());
    }
}

/// Streams events as JSON lines — one [`ProbeEvent::to_json`] object
/// per line — through a buffered writer.
pub struct JsonlSink<W: Write + Send> {
    writer: BufWriter<W>,
    lines: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer: BufWriter::new(writer), lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &ProbeEvent) {
        // An unwritable log should not take the collection session down;
        // errors surface at flush time via the CLI's explicit flush.
        let _ = writeln!(self.writer, "{}", event.to_json());
        self.lines += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A cloneable, shareable handle to an installed sink, or disabled.
///
/// This is the form probers carry: checking for the disabled state is
/// one `Option` test, and the event is only constructed when a sink is
/// actually present.
#[derive(Clone, Default)]
pub struct SinkHandle {
    inner: Option<Arc<Mutex<dyn EventSink>>>,
}

impl SinkHandle {
    /// A handle that records nothing and costs nothing.
    pub fn disabled() -> SinkHandle {
        SinkHandle::default()
    }

    /// Wraps a sink for sharing.
    pub fn new(sink: impl EventSink + 'static) -> SinkHandle {
        SinkHandle { inner: Some(Arc::new(Mutex::new(sink))) }
    }

    /// Whether a sink is installed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sends one event to the sink, if any.
    pub fn emit(&self, event: &ProbeEvent) {
        if let Some(sink) = &self.inner {
            sink.lock().expect("sink lock").emit(event);
        }
    }

    /// Sends one decision to the sink, if any.
    pub fn emit_decision(&self, decision: &DecisionEvent) {
        if let Some(sink) = &self.inner {
            sink.lock().expect("sink lock").emit_decision(decision);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner {
            Some(sink) => sink.lock().expect("sink lock").flush(),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkHandle").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Outcome, Phase, ProbeEvent};
    use wire::Protocol;

    fn ev(ttl: u8) -> ProbeEvent {
        ProbeEvent {
            tick: ttl as u64,
            session: None,
            vantage: "10.0.0.1".parse().unwrap(),
            dst: "10.0.9.6".parse().unwrap(),
            ttl,
            protocol: Protocol::Icmp,
            flow: 0,
            attempt: 0,
            outcome: Outcome::DirectReply,
            from: None,
            phase: Some(Phase::Trace),
            cause: None,
            timeout_cause: None,
            unreach: None,
        }
    }

    fn decision() -> DecisionEvent {
        DecisionEvent {
            session: None,
            hop: 1,
            phase: Some(Phase::Explore),
            cause: None,
            subject: None,
            verdict: crate::decision::DecisionVerdict::Collected,
            evidence: "done".into(),
        }
    }

    #[test]
    fn vec_sink_shares_its_buffer() {
        let sink = VecSink::new();
        let reader = sink.clone();
        let handle = SinkHandle::new(sink);
        assert!(handle.is_enabled());
        handle.emit(&ev(1));
        handle.emit(&ev(2));
        assert_eq!(reader.len(), 2);
        assert_eq!(reader.events()[1].ttl, 2);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = SinkHandle::disabled();
        assert!(!handle.is_enabled());
        handle.emit(&ev(1));
        handle.flush().unwrap();
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&ev(3));
        sink.emit(&ev(7));
        assert_eq!(sink.lines(), 2);
        sink.flush().unwrap();
        let bytes = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<ProbeEvent> = text
            .lines()
            .map(|l| ProbeEvent::from_json(&serde_json::from_str(l).unwrap()).unwrap())
            .collect();
        assert_eq!(parsed, vec![ev(3), ev(7)]);
    }

    #[test]
    fn vec_sink_stores_decisions_separately() {
        let sink = VecSink::new();
        let reader = sink.clone();
        let handle = SinkHandle::new(sink);
        handle.emit(&ev(1));
        handle.emit_decision(&decision());
        assert_eq!(reader.len(), 1, "decisions do not count as probe events");
        assert_eq!(reader.decisions().len(), 1);
    }

    #[test]
    fn jsonl_sink_ignores_decisions_keeping_one_line_per_probe() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&ev(3));
        sink.emit_decision(&decision());
        assert_eq!(sink.lines(), 1);
    }
}
