//! The probe event record and its attribution vocabulary.

use std::fmt;

use inet::Addr;
use serde_json::{json, Value};
use wire::Protocol;

/// The session phase a probe was sent from — the paper's three-stage
/// pipeline (§3): trace collection, subnet positioning, subnet
/// exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Hop discovery along the path to the destination.
    Trace,
    /// Subnet positioning (Algorithm 2): distances, pivots, ingresses.
    Position,
    /// Subnet exploration (Algorithm 1): growing and probing candidates.
    Explore,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 3] = [Phase::Trace, Phase::Position, Phase::Explore];

    /// Stable snake_case label used in JSON and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Trace => "trace",
            Phase::Position => "position",
            Phase::Explore => "explore",
        }
    }

    /// Parses a [`Phase::label`] rendering.
    pub fn from_label(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == s)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Trace => 0,
            Phase::Position => 1,
            Phase::Explore => 2,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a probe was sent: either an algorithmic step of
/// positioning/trace collection, or the paper heuristic (H1–H9, §3.4)
/// whose check needed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Hop probe of the initial trace collection.
    TraceCollection,
    /// Perceived-distance search around the trace TTL (§3.3).
    DistanceSearch,
    /// On-path check: does the hop answer at distance-1 with TTL
    /// expired?
    OnPathCheck,
    /// Pivot designation via the /31-or-/30 mate (Algorithm 2 line 4).
    PivotDesignation,
    /// In-use check before admitting a candidate address.
    InUseCheck,
    /// Ingress-router query at pivot distance - 1.
    IngressQuery,
    /// H1: stop-and-shrink on inconsistent member distance. H1 itself
    /// sends no probes; the variant exists so logs can attribute
    /// H1-triggered re-examinations.
    H1,
    /// H2: upper-bound subnet contiguity (pivot-distance aliveness).
    H2,
    /// H3: single contra-pivot admission at distance - 1.
    H3,
    /// H4: lower-bound contiguity at distance - 2.
    H4,
    /// H5: /31 mate shortcut before a full /30 scan.
    H5,
    /// H6: fixed entry points — the below-distance probe shared with H3.
    H6,
    /// H7: router contiguity via the pivot's mate.
    H7,
    /// H8: mate ingress comparison at distance - 1.
    H8,
    /// H9: boundary reduction. Sends no probes; kept for log
    /// completeness.
    H9,
}

impl Cause {
    /// Every cause, in declaration order.
    pub const ALL: [Cause; 15] = [
        Cause::TraceCollection,
        Cause::DistanceSearch,
        Cause::OnPathCheck,
        Cause::PivotDesignation,
        Cause::InUseCheck,
        Cause::IngressQuery,
        Cause::H1,
        Cause::H2,
        Cause::H3,
        Cause::H4,
        Cause::H5,
        Cause::H6,
        Cause::H7,
        Cause::H8,
        Cause::H9,
    ];

    /// Stable snake_case label used in JSON and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            Cause::TraceCollection => "trace_collection",
            Cause::DistanceSearch => "distance_search",
            Cause::OnPathCheck => "on_path_check",
            Cause::PivotDesignation => "pivot_designation",
            Cause::InUseCheck => "in_use_check",
            Cause::IngressQuery => "ingress_query",
            Cause::H1 => "h1",
            Cause::H2 => "h2",
            Cause::H3 => "h3",
            Cause::H4 => "h4",
            Cause::H5 => "h5",
            Cause::H6 => "h6",
            Cause::H7 => "h7",
            Cause::H8 => "h8",
            Cause::H9 => "h9",
        }
    }

    /// Parses a [`Cause::label`] rendering.
    pub fn from_label(s: &str) -> Option<Cause> {
        Cause::ALL.into_iter().find(|c| c.label() == s)
    }

    /// The paper heuristic number, for H1–H9 causes.
    pub fn heuristic(self) -> Option<u8> {
        match self {
            Cause::H1 => Some(1),
            Cause::H2 => Some(2),
            Cause::H3 => Some(3),
            Cause::H4 => Some(4),
            Cause::H5 => Some(5),
            Cause::H6 => Some(6),
            Cause::H7 => Some(7),
            Cause::H8 => Some(8),
            Cause::H9 => Some(9),
            _ => None,
        }
    }

    pub(crate) fn index(self) -> usize {
        Cause::ALL.iter().position(|c| *c == self).expect("cause is in ALL")
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What came back for one wire attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The probed address itself answered.
    DirectReply,
    /// An intermediate router sent TTL exceeded.
    TtlExceeded,
    /// A non-success ICMP unreachable.
    Unreachable,
    /// Silence (including replies rejected by validation).
    Timeout,
}

impl Outcome {
    /// Every outcome kind.
    pub const ALL: [Outcome; 4] =
        [Outcome::DirectReply, Outcome::TtlExceeded, Outcome::Unreachable, Outcome::Timeout];

    /// Stable snake_case label used in JSON and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::DirectReply => "direct_reply",
            Outcome::TtlExceeded => "ttl_exceeded",
            Outcome::Unreachable => "unreachable",
            Outcome::Timeout => "timeout",
        }
    }

    /// Parses an [`Outcome::label`] rendering.
    pub fn from_label(s: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.label() == s)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Outcome::DirectReply => 0,
            Outcome::TtlExceeded => 1,
            Outcome::Unreachable => 2,
            Outcome::Timeout => 3,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a timed-out attempt drew no (accepted) reply, when the prober can
/// tell. Mirrors the simulator's silence reasons plus [`StrayReply`]
/// (a reply arrived but failed validation). Live probers that cannot see
/// into the network leave it unset.
///
/// [`StrayReply`]: TimeoutCause::StrayReply
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimeoutCause {
    /// The probe's source address is unknown to the network.
    UnknownSource,
    /// No route covered the destination.
    NoRoute,
    /// A filtering firewall swallowed the probe.
    Filtered,
    /// Delivered to an unassigned address; no unreachable configured.
    Unassigned,
    /// Delivered but the owner's response policy stayed silent.
    PolicySilence,
    /// TTL expired at a router that does not answer for this protocol.
    TtlExpiredSilently,
    /// A reply was due but the router's rate limiter had no token.
    RateLimited,
    /// The probe could not be decoded on the wire.
    Malformed,
    /// An injected fault dropped the probe on the forward path.
    ForwardLoss,
    /// An injected fault lost the reply on the reverse path.
    ReplyLoss,
    /// Every next-hop link was down (flap or withdrawal).
    LinkDown,
    /// A reply came back but was rejected by probe validation.
    StrayReply,
}

impl TimeoutCause {
    /// Every cause, in declaration order.
    pub const ALL: [TimeoutCause; 12] = [
        TimeoutCause::UnknownSource,
        TimeoutCause::NoRoute,
        TimeoutCause::Filtered,
        TimeoutCause::Unassigned,
        TimeoutCause::PolicySilence,
        TimeoutCause::TtlExpiredSilently,
        TimeoutCause::RateLimited,
        TimeoutCause::Malformed,
        TimeoutCause::ForwardLoss,
        TimeoutCause::ReplyLoss,
        TimeoutCause::LinkDown,
        TimeoutCause::StrayReply,
    ];

    /// Stable snake_case label used in JSON and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            TimeoutCause::UnknownSource => "unknown_source",
            TimeoutCause::NoRoute => "no_route",
            TimeoutCause::Filtered => "filtered",
            TimeoutCause::Unassigned => "unassigned",
            TimeoutCause::PolicySilence => "policy_silence",
            TimeoutCause::TtlExpiredSilently => "ttl_expired_silently",
            TimeoutCause::RateLimited => "rate_limited",
            TimeoutCause::Malformed => "malformed",
            TimeoutCause::ForwardLoss => "forward_loss",
            TimeoutCause::ReplyLoss => "reply_loss",
            TimeoutCause::LinkDown => "link_down",
            TimeoutCause::StrayReply => "stray_reply",
        }
    }

    /// Parses a [`TimeoutCause::label`] rendering.
    pub fn from_label(s: &str) -> Option<TimeoutCause> {
        TimeoutCause::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Whether this cause is an injected transient fault (loss or a link
    /// held down) rather than a steady-state property of the topology.
    /// These are the causes that degrade a hop's completeness and feed
    /// the adaptive retry signal.
    pub fn is_fault(self) -> bool {
        matches!(self, TimeoutCause::ForwardLoss | TimeoutCause::ReplyLoss | TimeoutCause::LinkDown)
    }

    pub(crate) fn index(self) -> usize {
        TimeoutCause::ALL.iter().position(|c| *c == self).expect("cause is in ALL")
    }
}

impl fmt::Display for TimeoutCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which flavour of ICMP unreachable an [`Outcome::Unreachable`] attempt
/// drew. Mirrors the prober's unreachable kinds without depending on it,
/// so replay tools can rebuild the exact outcome from a log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnreachReason {
    /// ICMP host unreachable.
    Host,
    /// ICMP network unreachable.
    Net,
    /// ICMP administratively prohibited.
    AdminProhibited,
}

impl UnreachReason {
    /// Every reason, in declaration order.
    pub const ALL: [UnreachReason; 3] =
        [UnreachReason::Host, UnreachReason::Net, UnreachReason::AdminProhibited];

    /// Stable snake_case label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            UnreachReason::Host => "host",
            UnreachReason::Net => "net",
            UnreachReason::AdminProhibited => "admin_prohibited",
        }
    }

    /// Parses an [`UnreachReason::label`] rendering.
    pub fn from_label(s: &str) -> Option<UnreachReason> {
        UnreachReason::ALL.into_iter().find(|r| r.label() == s)
    }
}

impl fmt::Display for UnreachReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One packet put on the wire, with full attribution. This is the unit
/// of the JSONL probe log and the input to the metrics registry.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeEvent {
    /// Simulator clock (or wall-relative counter for live probers) at
    /// send time.
    pub tick: u64,
    /// Session (target index) attribution, set by batch drivers so
    /// interleaved logs from parallel workers stay separable. `None` for
    /// standalone probers outside any session.
    pub session: Option<u64>,
    /// Source address of the probing session.
    pub vantage: Addr,
    /// Probed destination.
    pub dst: Addr,
    /// Probe TTL.
    pub ttl: u8,
    /// Probe protocol.
    pub protocol: Protocol,
    /// Flow discriminator (Paris keeps it 0 within a session).
    pub flow: u16,
    /// Zero-based wire attempt for this logical probe; > 0 means retry
    /// after silence.
    pub attempt: u8,
    /// What came back for this attempt.
    pub outcome: Outcome,
    /// Replying address, when a reply was accepted.
    pub from: Option<Addr>,
    /// Originating phase, if the probe was sent inside a session phase.
    pub phase: Option<Phase>,
    /// Originating algorithm step or heuristic, if attributed.
    pub cause: Option<Cause>,
    /// Why a [`Outcome::Timeout`] attempt drew nothing, when known.
    /// `None` for replies and for probers that cannot attribute silence.
    pub timeout_cause: Option<TimeoutCause>,
    /// Which unreachable flavour an [`Outcome::Unreachable`] attempt
    /// drew, when the prober can tell. Replay rebuilds the exact probe
    /// outcome from this.
    pub unreach: Option<UnreachReason>,
}

pub(crate) fn protocol_label(p: Protocol) -> &'static str {
    match p {
        Protocol::Icmp => "icmp",
        Protocol::Udp => "udp",
        Protocol::Tcp => "tcp",
    }
}

pub(crate) fn protocol_from_label(s: &str) -> Option<Protocol> {
    match s {
        "icmp" => Some(Protocol::Icmp),
        "udp" => Some(Protocol::Udp),
        "tcp" => Some(Protocol::Tcp),
        _ => None,
    }
}

impl ProbeEvent {
    /// Renders the event as one JSON object (one JSONL line, sans
    /// newline).
    pub fn to_json(&self) -> Value {
        json!({
            "tick": self.tick,
            "session": self.session,
            "vantage": self.vantage.to_string(),
            "dst": self.dst.to_string(),
            "ttl": self.ttl,
            "proto": protocol_label(self.protocol),
            "flow": self.flow,
            "attempt": self.attempt,
            "outcome": self.outcome.label(),
            "from": self.from.map(|a| a.to_string()),
            "phase": self.phase.map(Phase::label),
            "cause": self.cause.map(Cause::label),
            "timeout_cause": self.timeout_cause.map(TimeoutCause::label),
            "unreach": self.unreach.map(UnreachReason::label),
        })
    }

    /// Parses an event back from its [`ProbeEvent::to_json`] rendering,
    /// validating every field. This is what log replay tools build on.
    pub fn from_json(v: &Value) -> Result<ProbeEvent, String> {
        fn addr(v: &Value, what: &str) -> Result<Addr, String> {
            v.as_str()
                .ok_or_else(|| format!("{what}: expected string"))?
                .parse()
                .map_err(|e| format!("{what}: {e}"))
        }
        fn num(v: &Value, what: &str, max: u64) -> Result<u64, String> {
            let n = v.as_u64().ok_or_else(|| format!("{what}: expected unsigned integer"))?;
            if n > max {
                return Err(format!("{what}: {n} out of range"));
            }
            Ok(n)
        }

        let outcome_label =
            v["outcome"].as_str().ok_or_else(|| "outcome: expected string".to_string())?;
        let proto_label =
            v["proto"].as_str().ok_or_else(|| "proto: expected string".to_string())?;
        let phase = match &v["phase"] {
            Value::Null => None,
            p => Some(
                p.as_str()
                    .and_then(Phase::from_label)
                    .ok_or_else(|| format!("phase: unknown value {p}"))?,
            ),
        };
        let cause = match &v["cause"] {
            Value::Null => None,
            c => Some(
                c.as_str()
                    .and_then(Cause::from_label)
                    .ok_or_else(|| format!("cause: unknown value {c}"))?,
            ),
        };
        let timeout_cause = match &v["timeout_cause"] {
            Value::Null => None,
            c => Some(
                c.as_str()
                    .and_then(TimeoutCause::from_label)
                    .ok_or_else(|| format!("timeout_cause: unknown value {c}"))?,
            ),
        };
        let unreach = match &v["unreach"] {
            Value::Null => None,
            r => Some(
                r.as_str()
                    .and_then(UnreachReason::from_label)
                    .ok_or_else(|| format!("unreach: unknown value {r}"))?,
            ),
        };
        let from = match &v["from"] {
            Value::Null => None,
            f => Some(addr(f, "from")?),
        };
        let session = match &v["session"] {
            Value::Null => None,
            s => Some(num(s, "session", u64::MAX)?),
        };
        Ok(ProbeEvent {
            tick: num(&v["tick"], "tick", u64::MAX)?,
            session,
            vantage: addr(&v["vantage"], "vantage")?,
            dst: addr(&v["dst"], "dst")?,
            ttl: num(&v["ttl"], "ttl", u8::MAX as u64)? as u8,
            protocol: protocol_from_label(proto_label)
                .ok_or_else(|| format!("proto: unknown value {proto_label:?}"))?,
            flow: num(&v["flow"], "flow", u16::MAX as u64)? as u16,
            attempt: num(&v["attempt"], "attempt", u8::MAX as u64)? as u8,
            outcome: Outcome::from_label(outcome_label)
                .ok_or_else(|| format!("outcome: unknown value {outcome_label:?}"))?,
            from,
            phase,
            cause,
            timeout_cause,
            unreach,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProbeEvent {
        ProbeEvent {
            tick: 42,
            session: Some(3),
            vantage: "10.0.0.1".parse().unwrap(),
            dst: "10.0.9.6".parse().unwrap(),
            ttl: 4,
            protocol: Protocol::Icmp,
            flow: 0,
            attempt: 1,
            outcome: Outcome::TtlExceeded,
            from: Some("10.0.3.1".parse().unwrap()),
            phase: Some(Phase::Explore),
            cause: Some(Cause::H4),
            timeout_cause: None,
            unreach: None,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let ev = sample();
        assert_eq!(ProbeEvent::from_json(&ev.to_json()).unwrap(), ev);

        let bare = ProbeEvent { from: None, phase: None, cause: None, session: None, ..sample() };
        assert_eq!(ProbeEvent::from_json(&bare.to_json()).unwrap(), bare);

        let timed_out = ProbeEvent {
            outcome: Outcome::Timeout,
            from: None,
            timeout_cause: Some(TimeoutCause::RateLimited),
            ..sample()
        };
        assert_eq!(ProbeEvent::from_json(&timed_out.to_json()).unwrap(), timed_out);

        let unreachable = ProbeEvent {
            outcome: Outcome::Unreachable,
            from: Some("10.0.3.1".parse().unwrap()),
            unreach: Some(UnreachReason::AdminProhibited),
            ..sample()
        };
        assert_eq!(ProbeEvent::from_json(&unreachable.to_json()).unwrap(), unreachable);

        // Logs written before timeout causes (PR 3) and session/unreach
        // tags (PR 4) existed parse as unattributed.
        let mut legacy = sample().to_json();
        if let Value::Object(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "timeout_cause" && k != "session" && k != "unreach");
        }
        let parsed = ProbeEvent::from_json(&legacy).unwrap();
        assert_eq!(parsed.timeout_cause, None);
        assert_eq!(parsed.session, None);
        assert_eq!(parsed.unreach, None);
    }

    #[test]
    fn from_json_rejects_bad_fields() {
        let mut v = sample().to_json();
        v["outcome"] = serde_json::json!("exploded");
        assert!(ProbeEvent::from_json(&v).unwrap_err().contains("outcome"));

        let mut v = sample().to_json();
        v["ttl"] = serde_json::json!(900);
        assert!(ProbeEvent::from_json(&v).unwrap_err().contains("ttl"));

        let mut v = sample().to_json();
        v["phase"] = serde_json::json!("warp");
        assert!(ProbeEvent::from_json(&v).unwrap_err().contains("phase"));

        let mut v = sample().to_json();
        v["timeout_cause"] = serde_json::json!("gremlins");
        assert!(ProbeEvent::from_json(&v).unwrap_err().contains("timeout_cause"));

        let mut v = sample().to_json();
        v["unreach"] = serde_json::json!("teapot");
        assert!(ProbeEvent::from_json(&v).unwrap_err().contains("unreach"));
    }

    #[test]
    fn labels_roundtrip_for_all_variants() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        for c in Cause::ALL {
            assert_eq!(Cause::from_label(c.label()), Some(c));
        }
        for o in Outcome::ALL {
            assert_eq!(Outcome::from_label(o.label()), Some(o));
        }
        for t in TimeoutCause::ALL {
            assert_eq!(TimeoutCause::from_label(t.label()), Some(t));
        }
        for r in UnreachReason::ALL {
            assert_eq!(UnreachReason::from_label(r.label()), Some(r));
        }
        assert_eq!(Cause::H7.heuristic(), Some(7));
        assert_eq!(Cause::IngressQuery.heuristic(), None);
        assert!(TimeoutCause::ForwardLoss.is_fault());
        assert!(TimeoutCause::LinkDown.is_fault());
        assert!(!TimeoutCause::RateLimited.is_fault());
        assert!(!TimeoutCause::PolicySilence.is_fault());
    }
}
