//! `tnet-obs`: the observability layer for the tracenet workspace.
//!
//! The paper's whole evaluation (§4, Figures 7–9, Tables 2–3) is an
//! accounting exercise over probe traffic: how many probes each phase
//! spends and which heuristic triggered them. This crate makes that
//! accounting a first-class, always-available artifact instead of
//! something each experiment recomputes:
//!
//! - [`event::ProbeEvent`] — one record per packet put on the wire, with
//!   the originating phase and heuristic attached.
//! - [`sink::EventSink`] — pluggable event consumers: [`sink::NullSink`],
//!   [`sink::VecSink`] (tests), [`sink::JsonlSink`] (streaming
//!   JSON-lines).
//! - [`metrics::Registry`] — thread-safe monotonic counters and
//!   fixed-bucket histograms keyed by phase and heuristic, with
//!   human-table and JSON snapshots.
//! - [`trace`] — a dependency-free `tracing`-style facade: levelled
//!   spans and events behind one atomic check, rendered by an
//!   installable subscriber (the CLI's `-v`/`-vv`).
//! - [`ctx`] — thread-local phase/cause attribution that the collection
//!   algorithms set and the probers read, so attribution needs no
//!   signature changes through the `Prober` seam.
//! - [`Recorder`] — the handle probers carry: sink + metrics bundled,
//!   free when disabled.
//!
//! Everything here is dependency-light by design (inet, wire, and the
//! vendored serde_json shim) so any crate in the workspace can afford
//! to depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod trace;

pub use ctx::{cause_scope, phase_scope};
pub use event::{Cause, Outcome, Phase, ProbeEvent, TimeoutCause};
pub use metrics::{CacheOutcome, MetricsSnapshot, Registry};
pub use recorder::Recorder;
pub use sink::{EventSink, JsonlSink, NullSink, SinkHandle, VecSink};
pub use trace::Level;
