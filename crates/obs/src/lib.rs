//! `tnet-obs`: the observability layer for the tracenet workspace.
//!
//! The paper's whole evaluation (§4, Figures 7–9, Tables 2–3) is an
//! accounting exercise over probe traffic: how many probes each phase
//! spends and which heuristic triggered them. This crate makes that
//! accounting a first-class, always-available artifact instead of
//! something each experiment recomputes:
//!
//! - [`event::ProbeEvent`] — one record per packet put on the wire, with
//!   the originating phase, heuristic, and session (target index)
//!   attached.
//! - [`decision::DecisionEvent`] — one record per algorithmic verdict of
//!   the collection pipeline: which heuristic fired, on which address,
//!   with what evidence. The stream `tnet explain` renders.
//! - [`exchange`] — the flight-recorder capture format: a versioned
//!   JSONL log interleaving probes, decisions, and per-session reports,
//!   parseable back into an [`exchange::ExchangeLog`] for deterministic
//!   replay and run diffing.
//! - [`sink::EventSink`] — pluggable event consumers: [`sink::NullSink`],
//!   [`sink::VecSink`] (tests), [`sink::JsonlSink`] (streaming
//!   JSON-lines), [`exchange::ExchangeSink`] (the flight recorder).
//! - [`metrics::Registry`] — thread-safe monotonic counters and
//!   fixed-bucket histograms keyed by phase and heuristic — including
//!   per-phase wall-tick latency — with human-table and JSON snapshots.
//! - [`trace`] — a dependency-free `tracing`-style facade: levelled
//!   spans and events behind one atomic check, rendered by an
//!   installable subscriber (the CLI's `-v`/`-vv`).
//! - [`ctx`] — thread-local phase/cause attribution that the collection
//!   algorithms set and the probers read, so attribution needs no
//!   signature changes through the `Prober` seam.
//! - [`Recorder`] — the handle probers carry: sink + metrics + session
//!   tag bundled, free when disabled.
//!
//! Everything here is dependency-light by design (inet, wire, and the
//! vendored serde_json shim) so any crate in the workspace can afford
//! to depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod decision;
pub mod event;
pub mod exchange;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod trace;

pub use ctx::{cause_scope, phase_scope};
pub use decision::{DecisionEvent, DecisionVerdict};
pub use event::{Cause, Outcome, Phase, ProbeEvent, TimeoutCause, UnreachReason};
pub use exchange::{ExchangeHeader, ExchangeLog, ExchangeSink, ExchangeWriter, FORMAT_VERSION};
pub use metrics::{CacheOutcome, MetricsSnapshot, Registry};
pub use recorder::Recorder;
pub use sink::{EventSink, JsonlSink, NullSink, SinkHandle, VecSink};
pub use trace::Level;
