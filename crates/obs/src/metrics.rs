//! A dependency-free metrics registry: monotonic counters and
//! fixed-bucket histograms keyed by phase and cause.
//!
//! Everything is a plain atomic so recording is lock-free and safe to
//! share across probing threads behind one `Arc<Registry>`. A
//! [`Registry::snapshot`] freezes the counters into a
//! [`MetricsSnapshot`] that renders as a human table (the shape of the
//! paper's Table 2) or as JSON.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::{json, Value};

use crate::event::{Cause, Outcome, Phase, ProbeEvent, TimeoutCause};

/// Number of phase slots: the three pipeline phases plus one for
/// probes sent outside any phase scope.
const PHASES: usize = Phase::ALL.len() + 1;
const UNATTRIBUTED: usize = Phase::ALL.len();
const CAUSES: usize = Cause::ALL.len();
const OUTCOMES: usize = Outcome::ALL.len();
const TIMEOUT_CAUSES: usize = TimeoutCause::ALL.len();

/// TTL histogram buckets: `[1, 2), [2, 4), [4, 8), [8, 16), [16, 32),
/// [32, 64), [64, 256]`. Upper bounds, inclusive-exclusive except the
/// last.
pub const TTL_BUCKETS: [u8; 7] = [2, 4, 8, 16, 32, 64, 255];

fn ttl_bucket(ttl: u8) -> usize {
    TTL_BUCKETS.iter().position(|&hi| ttl < hi).unwrap_or(TTL_BUCKETS.len() - 1)
}

/// Hop-cost histogram buckets (probes spent per collected hop):
/// `[0, 2), [2, 4), [4, 8), [8, 16), [16, 32), [32, ∞)`.
pub const HOP_COST_BUCKETS: [u64; 5] = [2, 4, 8, 16, 32];

fn hop_cost_bucket(cost: u64) -> usize {
    HOP_COST_BUCKETS.iter().position(|&hi| cost < hi).unwrap_or(HOP_COST_BUCKETS.len())
}

/// Phase-latency histogram buckets (wall ticks spent in one phase of one
/// hop): `[0, 4), [4, 16), [16, 64), [64, 256), [256, 1024),
/// [1024, 4096), [4096, ∞)`.
pub const PHASE_TICK_BUCKETS: [u64; 6] = [4, 16, 64, 256, 1024, 4096];

fn phase_tick_bucket(ticks: u64) -> usize {
    PHASE_TICK_BUCKETS.iter().position(|&hi| ticks < hi).unwrap_or(PHASE_TICK_BUCKETS.len())
}

/// What a cross-session subnet-cache lookup resolved to. Fed into the
/// registry by the session driver so saved probes are attributable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cache supplied an already-accepted subnet for the hop.
    Hit,
    /// The cache knew the hop was explored before and yielded no subnet,
    /// so positioning/exploration were skipped without a reusable subnet.
    Skip,
    /// The hop was not in the cache; it was positioned and explored.
    Miss,
}

impl CacheOutcome {
    /// All outcomes, in slot order.
    pub const ALL: [CacheOutcome; 3] = [CacheOutcome::Hit, CacheOutcome::Skip, CacheOutcome::Miss];

    fn index(self) -> usize {
        match self {
            CacheOutcome::Hit => 0,
            CacheOutcome::Skip => 1,
            CacheOutcome::Miss => 2,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Skip => "skip",
            CacheOutcome::Miss => "miss",
        }
    }
}

fn phase_slot(phase: Option<Phase>) -> usize {
    phase.map(Phase::index).unwrap_or(UNATTRIBUTED)
}

fn slot_label(slot: usize) -> &'static str {
    Phase::ALL.get(slot).map(|p| p.label()).unwrap_or("unattributed")
}

/// Thread-safe counters for probe traffic. Construct once per session
/// (or per experiment), share via `Arc`, feed through a
/// [`crate::Recorder`], and snapshot at the end.
#[derive(Debug, Default)]
pub struct Registry {
    /// Wire sends per phase slot.
    sent: [AtomicU64; PHASES],
    /// Retries (attempt > 0) per phase slot.
    retries: [AtomicU64; PHASES],
    /// Outcome counts per phase slot.
    outcomes: [[AtomicU64; OUTCOMES]; PHASES],
    /// Wire sends per cause.
    by_cause: [AtomicU64; CAUSES],
    /// Probe TTL distribution.
    ttl_hist: [AtomicU64; TTL_BUCKETS.len()],
    /// Probes-per-hop distribution, fed by the session after trace
    /// collection.
    hop_cost_hist: [AtomicU64; HOP_COST_BUCKETS.len() + 1],
    /// Cross-session subnet-cache lookups by outcome (hit/skip/miss).
    cache: [AtomicU64; CacheOutcome::ALL.len()],
    /// Timed-out attempts by attributed silence cause.
    timeout_causes: [AtomicU64; TIMEOUT_CAUSES],
    /// Per-phase wall-tick latency histogram (ticks spent in one phase
    /// of one hop), fed by the session driver.
    phase_ticks: [[AtomicU64; PHASE_TICK_BUCKETS.len() + 1]; PHASES],
    /// Per-phase completed-measurement count backing `phase_ticks`.
    phase_tick_count: [AtomicU64; PHASES],
    /// Per-phase total ticks backing `phase_ticks`.
    phase_tick_total: [AtomicU64; PHASES],
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Records one wire attempt. Called by [`crate::Recorder::record`];
    /// exposed for tools that replay a JSONL log into fresh metrics.
    pub fn record(&self, event: &ProbeEvent) {
        let slot = phase_slot(event.phase);
        self.sent[slot].fetch_add(1, Ordering::Relaxed);
        if event.attempt > 0 {
            self.retries[slot].fetch_add(1, Ordering::Relaxed);
        }
        self.outcomes[slot][event.outcome.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(cause) = event.cause {
            self.by_cause[cause.index()].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cause) = event.timeout_cause {
            self.timeout_causes[cause.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.ttl_hist[ttl_bucket(event.ttl)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the probe cost of one collected hop (probes spent per
    /// hop discovered during trace collection).
    pub fn record_hop_cost(&self, probes: u64) {
        self.hop_cost_hist[hop_cost_bucket(probes)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cross-session subnet-cache lookup.
    pub fn record_cache(&self, outcome: CacheOutcome) {
        self.cache[outcome.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the wall-tick latency of one completed phase of one hop.
    pub fn record_phase_ticks(&self, phase: Phase, ticks: u64) {
        let slot = phase.index();
        self.phase_ticks[slot][phase_tick_bucket(ticks)].fetch_add(1, Ordering::Relaxed);
        self.phase_tick_count[slot].fetch_add(1, Ordering::Relaxed);
        self.phase_tick_total[slot].fetch_add(ticks, Ordering::Relaxed);
    }

    /// Completed phase-latency measurements for `phase` so far.
    pub fn phase_tick_count(&self, phase: Phase) -> u64 {
        self.phase_tick_count[phase.index()].load(Ordering::Relaxed)
    }

    /// Total wall ticks measured in `phase` so far.
    pub fn phase_tick_total(&self, phase: Phase) -> u64 {
        self.phase_tick_total[phase.index()].load(Ordering::Relaxed)
    }

    /// Cache lookups that resolved to `outcome` so far.
    pub fn cache_count(&self, outcome: CacheOutcome) -> u64 {
        self.cache[outcome.index()].load(Ordering::Relaxed)
    }

    /// Wire sends attributed to `phase` so far.
    pub fn sent_in(&self, phase: Phase) -> u64 {
        self.sent[phase.index()].load(Ordering::Relaxed)
    }

    /// Wire sends with no phase attribution so far.
    pub fn sent_unattributed(&self) -> u64 {
        self.sent[UNATTRIBUTED].load(Ordering::Relaxed)
    }

    /// Wire sends attributed to `cause` so far.
    pub fn sent_for(&self, cause: Cause) -> u64 {
        self.by_cause[cause.index()].load(Ordering::Relaxed)
    }

    /// Timed-out attempts attributed to `cause` so far.
    pub fn timeouts_for(&self, cause: TimeoutCause) -> u64 {
        self.timeout_causes[cause.index()].load(Ordering::Relaxed)
    }

    /// Total wire sends across every phase slot.
    pub fn sent_total(&self) -> u64 {
        self.sent.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Freezes the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            sent: std::array::from_fn(|i| load(&self.sent[i])),
            retries: std::array::from_fn(|i| load(&self.retries[i])),
            outcomes: std::array::from_fn(|i| std::array::from_fn(|j| load(&self.outcomes[i][j]))),
            by_cause: std::array::from_fn(|i| load(&self.by_cause[i])),
            ttl_hist: std::array::from_fn(|i| load(&self.ttl_hist[i])),
            hop_cost_hist: std::array::from_fn(|i| load(&self.hop_cost_hist[i])),
            cache: std::array::from_fn(|i| load(&self.cache[i])),
            timeout_causes: std::array::from_fn(|i| load(&self.timeout_causes[i])),
            phase_ticks: std::array::from_fn(|i| {
                std::array::from_fn(|j| load(&self.phase_ticks[i][j]))
            }),
            phase_tick_count: std::array::from_fn(|i| load(&self.phase_tick_count[i])),
            phase_tick_total: std::array::from_fn(|i| load(&self.phase_tick_total[i])),
        }
    }
}

/// A frozen view of a [`Registry`], suitable for rendering and
/// comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    sent: [u64; PHASES],
    retries: [u64; PHASES],
    outcomes: [[u64; OUTCOMES]; PHASES],
    by_cause: [u64; CAUSES],
    ttl_hist: [u64; TTL_BUCKETS.len()],
    hop_cost_hist: [u64; HOP_COST_BUCKETS.len() + 1],
    cache: [u64; CacheOutcome::ALL.len()],
    timeout_causes: [u64; TIMEOUT_CAUSES],
    phase_ticks: [[u64; PHASE_TICK_BUCKETS.len() + 1]; PHASES],
    phase_tick_count: [u64; PHASES],
    phase_tick_total: [u64; PHASES],
}

impl MetricsSnapshot {
    /// Cache lookups that resolved to `outcome`.
    pub fn cache_count(&self, outcome: CacheOutcome) -> u64 {
        self.cache[outcome.index()]
    }

    /// Total cross-session cache lookups.
    pub fn cache_lookups(&self) -> u64 {
        self.cache.iter().sum()
    }
    /// Wire sends attributed to `phase`.
    pub fn sent_in(&self, phase: Phase) -> u64 {
        self.sent[phase.index()]
    }

    /// Wire sends with no phase attribution.
    pub fn sent_unattributed(&self) -> u64 {
        self.sent[UNATTRIBUTED]
    }

    /// Wire sends attributed to `cause`.
    pub fn sent_for(&self, cause: Cause) -> u64 {
        self.by_cause[cause.index()]
    }

    /// Timed-out attempts attributed to `cause`.
    pub fn timeouts_for(&self, cause: TimeoutCause) -> u64 {
        self.timeout_causes[cause.index()]
    }

    /// Total attributed timeouts.
    pub fn timeouts_attributed(&self) -> u64 {
        self.timeout_causes.iter().sum()
    }

    /// Total wire sends across every phase slot.
    pub fn sent_total(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Retries attributed to `phase`.
    pub fn retries_in(&self, phase: Phase) -> u64 {
        self.retries[phase.index()]
    }

    /// Outcome count for `phase`.
    pub fn outcome_in(&self, phase: Phase, outcome: Outcome) -> u64 {
        self.outcomes[phase.index()][outcome.index()]
    }

    /// Completed phase-latency measurements for `phase`.
    pub fn phase_tick_count(&self, phase: Phase) -> u64 {
        self.phase_tick_count[phase.index()]
    }

    /// Total wall ticks measured in `phase`.
    pub fn phase_tick_total(&self, phase: Phase) -> u64 {
        self.phase_tick_total[phase.index()]
    }

    /// Renders the snapshot as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "phase", "sent", "retries", "direct", "ttl_exc", "unreach", "timeout"
        );
        for slot in 0..PHASES {
            if slot == UNATTRIBUTED && self.sent[slot] == 0 {
                continue;
            }
            let o = &self.outcomes[slot];
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                slot_label(slot),
                self.sent[slot],
                self.retries[slot],
                o[0],
                o[1],
                o[2],
                o[3]
            );
        }
        let _ = writeln!(out, "{:<14} {:>8}", "total", self.sent_total());
        let attributed: Vec<(Cause, u64)> = Cause::ALL
            .into_iter()
            .map(|c| (c, self.by_cause[c.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        if !attributed.is_empty() {
            let _ = writeln!(out, "\n{:<18} {:>8}", "cause", "probes");
            for (cause, n) in attributed {
                let _ = writeln!(out, "{:<18} {:>8}", cause.label(), n);
            }
        }
        let attributed_timeouts: Vec<(TimeoutCause, u64)> = TimeoutCause::ALL
            .into_iter()
            .map(|c| (c, self.timeout_causes[c.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        if !attributed_timeouts.is_empty() {
            let _ = writeln!(out, "\n{:<22} {:>8}", "timeout cause", "count");
            for (cause, n) in attributed_timeouts {
                let _ = writeln!(out, "{:<22} {:>8}", cause.label(), n);
            }
        }
        if self.cache_lookups() > 0 {
            let _ = writeln!(
                out,
                "\nsubnet cache: {} hits, {} skips, {} misses ({} lookups)",
                self.cache_count(CacheOutcome::Hit),
                self.cache_count(CacheOutcome::Skip),
                self.cache_count(CacheOutcome::Miss),
                self.cache_lookups(),
            );
        }
        if Phase::ALL.iter().any(|&p| self.phase_tick_count(p) > 0) {
            let _ = writeln!(
                out,
                "\n{:<14} {:>8} {:>10} {:>10}",
                "phase latency", "hops", "ticks", "avg"
            );
            for phase in Phase::ALL {
                let count = self.phase_tick_count(phase);
                if count == 0 {
                    continue;
                }
                let total = self.phase_tick_total(phase);
                let _ = writeln!(
                    out,
                    "{:<14} {:>8} {:>10} {:>10.1}",
                    phase.label(),
                    count,
                    total,
                    total as f64 / count as f64,
                );
            }
        }
        out
    }

    /// Serializes the snapshot as a JSON object.
    ///
    /// Shape: `phases` maps phase label (plus `"unattributed"`) to
    /// `{sent, retries, outcomes: {...}}`; `causes` maps cause labels
    /// to send counts (zero counts omitted); `total_sent` is the grand
    /// total; `ttl_histogram` and `hop_cost_histogram` list
    /// `{le, count}` buckets.
    pub fn to_json(&self) -> Value {
        let mut phases = Vec::new();
        for slot in 0..PHASES {
            let o = &self.outcomes[slot];
            let outcomes = Value::Object(
                Outcome::ALL
                    .into_iter()
                    .map(|k| (k.label().to_string(), json!(o[k.index()])))
                    .collect(),
            );
            phases.push((
                slot_label(slot).to_string(),
                json!({
                    "sent": self.sent[slot],
                    "retries": self.retries[slot],
                    "outcomes": outcomes,
                }),
            ));
        }
        let causes = Value::Object(
            Cause::ALL
                .into_iter()
                .filter(|c| self.by_cause[c.index()] > 0)
                .map(|c| (c.label().to_string(), json!(self.by_cause[c.index()])))
                .collect(),
        );
        let ttl_hist = Value::Array(
            TTL_BUCKETS
                .iter()
                .zip(self.ttl_hist.iter())
                .map(|(&le, &count)| json!({ "le": le, "count": count }))
                .collect(),
        );
        let hop_hist = Value::Array(
            HOP_COST_BUCKETS
                .iter()
                .map(|&b| b.to_string())
                .chain(std::iter::once("inf".to_string()))
                .zip(self.hop_cost_hist.iter())
                .map(|(le, &count)| json!({ "le": le, "count": count }))
                .collect(),
        );
        let cache = Value::Object(
            CacheOutcome::ALL
                .into_iter()
                .map(|o| (o.label().to_string(), json!(self.cache_count(o))))
                .collect(),
        );
        let timeout_causes = Value::Object(
            TimeoutCause::ALL
                .into_iter()
                .filter(|c| self.timeout_causes[c.index()] > 0)
                .map(|c| (c.label().to_string(), json!(self.timeout_causes[c.index()])))
                .collect(),
        );
        let phase_latency = Value::Object(
            Phase::ALL
                .into_iter()
                .map(|p| {
                    let slot = p.index();
                    let buckets = Value::Array(
                        PHASE_TICK_BUCKETS
                            .iter()
                            .map(|b| b.to_string())
                            .chain(std::iter::once("inf".to_string()))
                            .zip(self.phase_ticks[slot].iter())
                            .map(|(le, &count)| json!({ "le": le, "count": count }))
                            .collect(),
                    );
                    (
                        p.label().to_string(),
                        json!({
                            "count": self.phase_tick_count[slot],
                            "total_ticks": self.phase_tick_total[slot],
                            "buckets": buckets,
                        }),
                    )
                })
                .collect(),
        );
        json!({
            "total_sent": self.sent_total(),
            "phases": Value::Object(phases),
            "causes": causes,
            "ttl_histogram": ttl_hist,
            "hop_cost_histogram": hop_hist,
            "cache": cache,
            "timeout_causes": timeout_causes,
            "phase_latency": phase_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::Protocol;

    fn ev(phase: Option<Phase>, cause: Option<Cause>, ttl: u8, attempt: u8) -> ProbeEvent {
        ProbeEvent {
            tick: 0,
            session: None,
            vantage: "10.0.0.1".parse().unwrap(),
            dst: "10.0.9.6".parse().unwrap(),
            ttl,
            protocol: Protocol::Icmp,
            flow: 0,
            attempt,
            outcome: if attempt > 0 { Outcome::Timeout } else { Outcome::DirectReply },
            from: None,
            phase,
            cause,
            timeout_cause: if attempt > 0 { Some(TimeoutCause::PolicySilence) } else { None },
            unreach: None,
        }
    }

    #[test]
    fn counters_accumulate_by_phase_and_cause() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Trace), Some(Cause::TraceCollection), 3, 0));
        reg.record(&ev(Some(Phase::Trace), Some(Cause::TraceCollection), 3, 1));
        reg.record(&ev(Some(Phase::Explore), Some(Cause::H2), 5, 0));
        reg.record(&ev(None, None, 9, 0));

        assert_eq!(reg.sent_in(Phase::Trace), 2);
        assert_eq!(reg.sent_in(Phase::Explore), 1);
        assert_eq!(reg.sent_unattributed(), 1);
        assert_eq!(reg.sent_total(), 4);
        assert_eq!(reg.sent_for(Cause::H2), 1);

        let snap = reg.snapshot();
        assert_eq!(snap.sent_total(), 4);
        assert_eq!(snap.retries_in(Phase::Trace), 1);
        assert_eq!(snap.outcome_in(Phase::Trace, Outcome::Timeout), 1);
        assert_eq!(snap.outcome_in(Phase::Trace, Outcome::DirectReply), 1);
    }

    #[test]
    fn timeout_causes_accumulate_and_render() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Trace), None, 3, 1));
        let mut lost = ev(Some(Phase::Explore), None, 5, 0);
        lost.outcome = Outcome::Timeout;
        lost.timeout_cause = Some(TimeoutCause::ForwardLoss);
        reg.record(&lost);
        assert_eq!(reg.timeouts_for(TimeoutCause::PolicySilence), 1);
        assert_eq!(reg.timeouts_for(TimeoutCause::ForwardLoss), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.timeouts_attributed(), 2);
        let table = snap.render_table();
        assert!(table.contains("timeout cause"), "{table}");
        assert!(table.contains("forward_loss"), "{table}");
        let v = snap.to_json();
        assert_eq!(v["timeout_causes"]["forward_loss"], 1u64);
        assert!(v["timeout_causes"]["link_down"].is_null(), "zero causes omitted");
    }

    #[test]
    fn ttl_buckets_cover_the_full_range() {
        for ttl in 0..=255u8 {
            let b = ttl_bucket(ttl);
            assert!(b < TTL_BUCKETS.len(), "ttl {ttl} got bucket {b}");
        }
        assert_eq!(ttl_bucket(1), 0);
        assert_eq!(ttl_bucket(2), 1);
        assert_eq!(ttl_bucket(63), 5);
        assert_eq!(ttl_bucket(64), 6);
        assert_eq!(ttl_bucket(255), 6);
    }

    #[test]
    fn snapshot_json_has_expected_shape() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Position), Some(Cause::DistanceSearch), 4, 0));
        reg.record_hop_cost(3);
        let v = reg.snapshot().to_json();
        assert_eq!(v["total_sent"], 1u64);
        assert_eq!(v["phases"]["position"]["sent"], 1u64);
        assert_eq!(v["phases"]["position"]["outcomes"]["direct_reply"], 1u64);
        assert_eq!(v["causes"]["distance_search"], 1u64);
        assert!(v["causes"]["h2"].is_null(), "zero causes omitted");
        assert_eq!(v["hop_cost_histogram"][1]["count"], 1u64);
    }

    #[test]
    fn cache_counters_accumulate_and_render() {
        let reg = Registry::new();
        reg.record_cache(CacheOutcome::Miss);
        reg.record_cache(CacheOutcome::Hit);
        reg.record_cache(CacheOutcome::Hit);
        reg.record_cache(CacheOutcome::Skip);
        assert_eq!(reg.cache_count(CacheOutcome::Hit), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.cache_count(CacheOutcome::Hit), 2);
        assert_eq!(snap.cache_count(CacheOutcome::Skip), 1);
        assert_eq!(snap.cache_count(CacheOutcome::Miss), 1);
        assert_eq!(snap.cache_lookups(), 4);
        let table = snap.render_table();
        assert!(table.contains("subnet cache: 2 hits, 1 skips, 1 misses (4 lookups)"), "{table}");
        let v = snap.to_json();
        assert_eq!(v["cache"]["hit"], 2u64);
        assert_eq!(v["cache"]["miss"], 1u64);
    }

    #[test]
    fn cache_line_hidden_when_no_lookups() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Trace), None, 3, 0));
        let table = reg.snapshot().render_table();
        assert!(!table.contains("subnet cache"), "{table}");
    }

    #[test]
    fn phase_tick_histogram_accumulates_and_renders() {
        let reg = Registry::new();
        reg.record_phase_ticks(Phase::Trace, 3);
        reg.record_phase_ticks(Phase::Explore, 100);
        reg.record_phase_ticks(Phase::Explore, 5000);
        assert_eq!(reg.phase_tick_count(Phase::Explore), 2);
        assert_eq!(reg.phase_tick_total(Phase::Explore), 5100);

        let snap = reg.snapshot();
        assert_eq!(snap.phase_tick_count(Phase::Trace), 1);
        assert_eq!(snap.phase_tick_total(Phase::Trace), 3);

        let v = snap.to_json();
        assert_eq!(v["phase_latency"]["explore"]["count"], 2u64);
        assert_eq!(v["phase_latency"]["explore"]["total_ticks"], 5100u64);
        // 100 lands in [64, 256); 5000 overflows into the "inf" bucket.
        assert_eq!(v["phase_latency"]["explore"]["buckets"][3]["count"], 1u64);
        assert_eq!(v["phase_latency"]["explore"]["buckets"][6]["le"], "inf");
        assert_eq!(v["phase_latency"]["explore"]["buckets"][6]["count"], 1u64);

        let table = snap.render_table();
        assert!(table.contains("phase latency"), "{table}");
        assert!(table.contains("2550.0"), "explore average rendered: {table}");
    }

    #[test]
    fn phase_latency_section_hidden_without_measurements() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Trace), None, 3, 0));
        let table = reg.snapshot().render_table();
        assert!(!table.contains("phase latency"), "{table}");
    }

    #[test]
    fn render_table_lists_phases_and_causes() {
        let reg = Registry::new();
        reg.record(&ev(Some(Phase::Explore), Some(Cause::H5), 6, 0));
        let table = reg.snapshot().render_table();
        assert!(table.contains("explore"), "{table}");
        assert!(table.contains("h5"), "{table}");
        assert!(table.contains("total"), "{table}");
        assert!(!table.contains("unattributed"), "empty slot hidden: {table}");
    }
}
