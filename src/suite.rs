//! Workspace-spanning glue for the integration tests and examples.
//!
//! The real library surface lives in the member crates (`tracenet`,
//! `netsim`, `probe`, `topogen`, `evalkit`, …); this crate only hosts the
//! `tests/` directory that exercises them together and a couple of small
//! helpers those tests and the `examples/` binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use inet::Addr;
use netsim::{Network, Topology};
use probe::SimProber;
use tracenet::{Session, TraceReport, TracenetOptions};

/// Runs one tracenet session with default options over a fresh network —
/// the three lines every example starts with.
pub fn trace_once(topology: Topology, vantage: Addr, destination: Addr) -> TraceReport {
    let mut net = Network::new(topology);
    let mut prober = SimProber::new(&mut net, vantage);
    Session::new(&mut prober, TracenetOptions::default()).run(destination)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::samples;

    #[test]
    fn trace_once_runs_a_session() {
        let (topo, names) = samples::chain(2);
        let report = trace_once(topo, names.addr("vantage"), names.addr("dest"));
        assert!(report.destination_reached);
        assert_eq!(report.hops.len(), 3);
    }
}
