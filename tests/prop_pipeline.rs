//! Property tests over randomized topologies: whatever the network looks
//! like, tracenet's output must satisfy the paper's structural
//! invariants.

use std::collections::BTreeMap;

use evalkit::run::run_tracenet;
use inet::Addr;
use netsim::{Network, RoutingTable};
use probe::Protocol;
use proptest::prelude::*;
use topogen::random_topology;
use tracenet::TracenetOptions;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness: every address tracenet reports exists in the topology,
    /// every collected member lies inside its collected prefix, and each
    /// member's *true* subnet either covers or is covered by the
    /// collected prefix. (Mixing two true subnets under one collected
    /// prefix is allowed — that is the paper's `merg` class, which the
    /// H8 discussion concedes is possible for adjacent same-ingress
    /// links — but a collected subnet may never claim an address whose
    /// true LAN lies entirely elsewhere.)
    #[test]
    fn collected_subnets_are_sound(seed in 0u64..40) {
        let scenario = random_topology(seed, 6);
        let vantage = scenario.vantage("vantage");
        let mut net = Network::new(scenario.topology.clone());
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let collected =
            run_tracenet(&mut net, vantage, &targets, Protocol::Icmp, &TracenetOptions::default());

        for addr in collected.addresses() {
            prop_assert!(
                scenario.topology.iface_by_addr(*addr).is_some(),
                "seed {seed}: invented address {addr}"
            );
        }
        for rec in collected.records() {
            for &m in rec.members() {
                prop_assert!(rec.prefix().contains(m));
                let gt = scenario.ground_truth.containing(m);
                prop_assert!(gt.is_some(), "seed {seed}: member {m} has no ground truth");
                let truth = gt.expect("checked").prefix;
                prop_assert!(
                    truth.covers(rec.prefix()) || rec.prefix().covers(truth),
                    "seed {seed}: collected {} unrelated to {m}'s true subnet {truth}",
                    rec.prefix()
                );
            }
        }
    }

    /// Unit subnet diameter (§3.2(iii)) holds for every collected subnet:
    /// member hop distances span at most one.
    #[test]
    fn collected_subnets_have_unit_diameter(seed in 40u64..70) {
        let scenario = random_topology(seed, 6);
        let vantage = scenario.vantage("vantage");
        let routing = RoutingTable::compute(&scenario.topology);
        let v_owner = scenario.topology.owner_of(vantage).expect("vantage owner");
        let mut net = Network::new(scenario.topology.clone());
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let collected =
            run_tracenet(&mut net, vantage, &targets, Protocol::Icmp, &TracenetOptions::default());

        for rec in collected.records() {
            let dists: Vec<u16> = rec
                .members()
                .iter()
                .filter_map(|&m| scenario.topology.owner_of(m))
                .map(|r| routing.dist(v_owner, r))
                .collect();
            let (min, max) = (
                *dists.iter().min().expect("members"),
                *dists.iter().max().expect("members"),
            );
            prop_assert!(
                max - min <= 1,
                "seed {seed}: {} spans hops {min}..{max}",
                rec.prefix()
            );
        }
    }

    /// Determinism: running the same collection twice over fresh networks
    /// yields identical subnet sets (the whole evaluation depends on it).
    #[test]
    fn collection_is_deterministic(seed in 70u64..90) {
        let scenario = random_topology(seed, 4);
        let vantage = scenario.vantage("vantage");
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(8).collect();
        let run = || {
            let mut net = Network::new(scenario.topology.clone());
            let c = run_tracenet(
                &mut net,
                vantage,
                &targets,
                Protocol::Icmp,
                &TracenetOptions::default(),
            );
            (c.prefixes(), c.probes)
        };
        let (a, pa) = run();
        let (b, pb) = run();
        prop_assert_eq!(a, b);
        prop_assert_eq!(pa, pb);
    }

    /// Accounting invariants: the subnetized and un-subnetized address
    /// populations of Figure 7 partition cleanly — no address is both,
    /// and every one of them was actually observed.
    #[test]
    fn subnetized_and_unsubnetized_partition(seed in 90u64..105) {
        let scenario = random_topology(seed, 4);
        let vantage = scenario.vantage("vantage");
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(8).collect();
        let mut net = Network::new(scenario.topology.clone());
        let collected =
            run_tracenet(&mut net, vantage, &targets, Protocol::Icmp, &TracenetOptions::default());
        let sub = collected.subnetized_addresses(None);
        let unsub = collected.unsubnetized_addresses(None);
        prop_assert!(sub.intersection(&unsub).next().is_none(), "overlap");
        for a in sub.iter().chain(unsub.iter()) {
            prop_assert!(collected.addresses().contains(a), "{a} unobserved");
        }
    }
}

/// Aggregate sanity outside proptest: across many random seeds, exact
/// matches dominate and merges stay rare (the Table 1 "shape" is not a
/// fluke of one generator seed).
#[test]
fn exactness_dominates_across_seeds() {
    let mut by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    for seed in 0..6u64 {
        let scenario = random_topology(seed, 6);
        let vantage = scenario.vantage("vantage");
        let mut net = Network::new(scenario.topology.clone());
        let collected = run_tracenet(
            &mut net,
            vantage,
            &scenario.targets,
            Protocol::Icmp,
            &TracenetOptions::default(),
        );
        let gt: Vec<&topogen::GtSubnet> = scenario.ground_truth.of_network("random").collect();
        for c in evalkit::classify::classify(&gt, &collected.records()) {
            *by_class.entry(c.class.label()).or_insert(0) += 1;
        }
    }
    let exact = by_class.get("exmt").copied().unwrap_or(0);
    let total: usize = by_class.values().sum();
    assert!(exact * 2 > total, "exact matches should dominate: {by_class:?}");
    let merged = by_class.get("merg").copied().unwrap_or(0);
    assert!(merged * 20 < total, "merges should be rare: {by_class:?}");
}
