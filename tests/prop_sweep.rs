//! Property tests over the batch engine: on randomized topologies the
//! cross-session cache must change probe spend, never observations.

use std::collections::{BTreeMap, BTreeSet};

use evalkit::run::run_tracenet_batch;
use evalkit::CollectedSet;
use inet::{Addr, Prefix};
use netsim::{FaultPlan, Network};
use probe::{Prober, RetryPolicy, SharedNetwork, SimProber};
use proptest::prelude::*;
use sweep::BatchConfig;
use topogen::random_topology;
use tracenet::TracenetOptions;

fn collect(
    scenario: &topogen::Scenario,
    targets: &[Addr],
    cfg: &BatchConfig,
) -> (CollectedSet, sweep::CacheStats) {
    collect_with_plan(scenario, targets, cfg, None)
}

fn collect_with_plan(
    scenario: &topogen::Scenario,
    targets: &[Addr],
    cfg: &BatchConfig,
    plan: Option<FaultPlan>,
) -> (CollectedSet, sweep::CacheStats) {
    let mut net = Network::new(scenario.topology.clone());
    net.set_fault_plan(plan);
    let shared = SharedNetwork::new(net);
    run_tracenet_batch(
        &shared,
        scenario.vantage("vantage"),
        targets,
        cfg,
        &obs::Recorder::disabled(),
    )
}

/// A moderate seeded fault plan for the robustness properties.
fn plan_from(seed: u64) -> FaultPlan {
    FaultPlan { forward_loss: 0.15, router_loss: 0.08, reply_loss: 0.12, ..FaultPlan::new(seed) }
}

/// Session options for faulty runs: a finite per-hop fault budget.
fn faulty_opts() -> TracenetOptions {
    TracenetOptions { hop_fault_budget: Some(32), ..TracenetOptions::default() }
}

fn subnet_map(set: &CollectedSet) -> BTreeMap<Prefix, BTreeSet<Addr>> {
    set.records().iter().map(|r| (r.prefix(), r.members().iter().copied().collect())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The cached run discovers exactly the uncached run's subnet set
    /// (same prefixes, same members, same addresses) while never
    /// spending more probes.
    #[test]
    fn cache_changes_probes_not_observations(seed in 0u64..64, size in 8usize..=11) {
        let scenario = random_topology(seed, size);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(16).collect();
        let uncached =
            collect(&scenario, &targets, &BatchConfig { use_cache: false, ..BatchConfig::default() });
        let cached = collect(&scenario, &targets, &BatchConfig::default());

        prop_assert_eq!(subnet_map(&cached.0), subnet_map(&uncached.0), "seed {}", seed);
        prop_assert_eq!(cached.0.addresses(), uncached.0.addresses(), "seed {}", seed);
        prop_assert!(
            cached.0.probes <= uncached.0.probes,
            "seed {}: cache added probes ({} > {})",
            seed, cached.0.probes, uncached.0.probes
        );
        prop_assert_eq!(uncached.1, sweep::CacheStats::default());
    }

    /// Accounting invariants: every target gets a session, every lookup
    /// is counted exactly once, and hits plus sessions can only exceed
    /// the target count (each hit stands in for work a session skipped).
    #[test]
    fn cache_accounting_is_complete(seed in 64u64..128, jobs in 1usize..=8) {
        let scenario = random_topology(seed, 9);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let (set, stats) =
            collect(&scenario, &targets, &BatchConfig { jobs, ..BatchConfig::default() });

        prop_assert_eq!(set.sessions, targets.len(), "seed {}", seed);
        prop_assert_eq!(stats.lookups(), stats.hits + stats.skips + stats.misses);
        prop_assert!(
            stats.hits + set.sessions as u64 >= targets.len() as u64,
            "seed {}: sessions ran but accounting lost hits", seed
        );
        // Every miss is a hop the engine went on to explore and admit.
        prop_assert!(
            stats.admitted >= stats.misses,
            "seed {}: {} misses but only {} admissions",
            seed, stats.misses, stats.admitted
        );
    }

    /// Thread count is invisible in the output: jobs=1 and jobs=8 cached
    /// runs produce identical collected sets on fluctuation-free nets.
    #[test]
    fn thread_count_is_invisible(seed in 128u64..160) {
        let scenario = random_topology(seed, 10);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let seq = collect(&scenario, &targets, &BatchConfig::default());
        let par = collect(&scenario, &targets, &BatchConfig { jobs: 8, ..BatchConfig::default() });
        prop_assert_eq!(subnet_map(&par.0), subnet_map(&seq.0), "seed {}", seed);
        prop_assert_eq!(par.0.addresses(), seq.0.addresses(), "seed {}", seed);
    }

    /// Soundness under faults: whatever a seeded fault plan does, the
    /// batch never reports an address the topology does not assign, and
    /// every session completes (no aborted sentinel reports).
    #[test]
    fn faulty_runs_discover_only_assigned_addresses(seed in 160u64..200) {
        let scenario = random_topology(seed, 9);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(10).collect();
        let cfg = BatchConfig { opts: faulty_opts(), ..BatchConfig::default() };
        let (set, _) = collect_with_plan(&scenario, &targets, &cfg, Some(plan_from(seed)));
        prop_assert_eq!(set.sessions, targets.len(), "seed {}", seed);
        for &addr in set.addresses() {
            prop_assert!(
                scenario.topology.iface_by_addr(addr).is_some(),
                "seed {}: faulty run invented address {}", seed, addr
            );
        }
    }

    /// Monotone degradation: scaling the loss knobs up (same seed) never
    /// lets the batch discover more than a lighter-loss run.
    #[test]
    fn degradation_is_monotone_in_the_loss_knobs(seed in 200u64..230) {
        let scenario = random_topology(seed, 9);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(10).collect();
        let cfg = BatchConfig { opts: faulty_opts(), ..BatchConfig::default() };
        let base = plan_from(seed);
        let mut prev = usize::MAX;
        for factor in [0.0, 0.5, 1.0] {
            let plan = base.scaled_loss(factor);
            let (set, _) = collect_with_plan(&scenario, &targets, &cfg, Some(plan));
            let count = set.addresses().len();
            prop_assert!(
                count <= prev,
                "seed {}: loss factor {} discovered {} > lighter run's {}",
                seed, factor, count, prev
            );
            prev = count;
        }
    }

    /// ProbeStats identities hold for every retry policy shape, with and
    /// without faults: wire sends decompose into requests plus retries,
    /// requests decompose into the four outcomes, and fault attribution
    /// never exceeds the timeout count.
    #[test]
    fn probe_stats_identities_hold_for_every_retry_policy(
        seed in 230u64..250,
        policy_idx in 0usize..5,
        faulty in any::<bool>(),
    ) {
        let policies = [
            RetryPolicy::Fixed { retries: 0 },
            RetryPolicy::Fixed { retries: 2 },
            RetryPolicy::Backoff { retries: 3, base: 4 },
            RetryPolicy::Adaptive { min: 0, max: 3 },
            RetryPolicy::Adaptive { min: 1, max: 1 },
        ];
        let scenario = random_topology(seed, 9);
        let mut net = Network::new(scenario.topology.clone());
        if faulty {
            net.set_fault_plan(Some(plan_from(seed)));
        }
        let mut prober = SimProber::new(&mut net, scenario.vantage("vantage"))
            .retry_policy(policies[policy_idx]);
        for &target in scenario.targets.iter().take(6) {
            for ttl in 1..=6u8 {
                let _ = prober.probe(target, ttl);
            }
        }
        let s = prober.stats();
        prop_assert_eq!(s.sent, s.requests + s.retries, "seed {}", seed);
        prop_assert_eq!(
            s.requests,
            s.direct_replies + s.ttl_exceeded + s.unreachable + s.timeouts,
            "seed {}", seed
        );
        prop_assert!(
            s.timeouts_loss + s.timeouts_rate_limited <= s.timeouts,
            "seed {}: attributed more timeouts than happened", seed
        );
        if !faulty {
            prop_assert_eq!(s.timeouts_loss + s.timeouts_rate_limited, 0, "seed {}", seed);
        }
    }

    /// The jobs=1 identity contract of the concurrent engine refactor:
    /// a single-job `run_batch` over the lock-free shared handle renders
    /// byte-identical reports (and records a byte-identical probe-event
    /// stream) to `run_batch_seq` over the classic exclusive engine, on
    /// random topologies with and without a fault plan.
    #[test]
    fn single_job_batch_is_byte_identical_to_the_sequential_engine(
        seed in 250u64..270,
        faulty in any::<bool>(),
    ) {
        let scenario = random_topology(seed, 9);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(8).collect();
        let vantage = scenario.vantage("vantage");
        let plan = faulty.then(|| plan_from(seed));
        let cfg = BatchConfig {
            use_cache: false,
            opts: faulty_opts(),
            ..BatchConfig::default()
        };

        let seq_sink = obs::VecSink::new();
        let seq_reader = seq_sink.clone();
        let mut net = Network::new(scenario.topology.clone());
        net.set_fault_plan(plan);
        let seq = sweep::run_batch_seq(
            &mut net,
            vantage,
            &targets,
            &cfg,
            &obs::Recorder::new().with_sink(obs::SinkHandle::new(seq_sink)),
        );

        let par_sink = obs::VecSink::new();
        let par_reader = par_sink.clone();
        let mut net = Network::new(scenario.topology.clone());
        net.set_fault_plan(plan);
        let shared = SharedNetwork::new(net);
        let par = sweep::run_batch(
            &shared,
            vantage,
            &targets,
            &cfg,
            &obs::Recorder::new().with_sink(obs::SinkHandle::new(par_sink)),
        );

        prop_assert_eq!(seq.probes, par.probes, "seed {}", seed);
        for (k, (a, b)) in seq.reports.iter().zip(&par.reports).enumerate() {
            prop_assert_eq!(
                format!("{a:?}"), format!("{b:?}"),
                "seed {}: target {} diverged", seed, k
            );
        }
        let seq_events: Vec<String> =
            seq_reader.events().iter().map(|e| e.to_json().to_string()).collect();
        let par_events: Vec<String> =
            par_reader.events().iter().map(|e| e.to_json().to_string()).collect();
        prop_assert_eq!(seq_events, par_events, "seed {}: event streams diverged", seed);
    }
}
