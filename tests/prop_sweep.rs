//! Property tests over the batch engine: on randomized topologies the
//! cross-session cache must change probe spend, never observations.

use std::collections::{BTreeMap, BTreeSet};

use evalkit::run::run_tracenet_batch;
use evalkit::CollectedSet;
use inet::{Addr, Prefix};
use netsim::Network;
use probe::SharedNetwork;
use proptest::prelude::*;
use sweep::BatchConfig;
use topogen::random_topology;

fn collect(
    scenario: &topogen::Scenario,
    targets: &[Addr],
    cfg: &BatchConfig,
) -> (CollectedSet, sweep::CacheStats) {
    let shared = SharedNetwork::new(Network::new(scenario.topology.clone()));
    run_tracenet_batch(
        &shared,
        scenario.vantage("vantage"),
        targets,
        cfg,
        &obs::Recorder::disabled(),
    )
}

fn subnet_map(set: &CollectedSet) -> BTreeMap<Prefix, BTreeSet<Addr>> {
    set.records().iter().map(|r| (r.prefix(), r.members().iter().copied().collect())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The cached run discovers exactly the uncached run's subnet set
    /// (same prefixes, same members, same addresses) while never
    /// spending more probes.
    #[test]
    fn cache_changes_probes_not_observations(seed in 0u64..64, size in 8usize..=11) {
        let scenario = random_topology(seed, size);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(16).collect();
        let uncached =
            collect(&scenario, &targets, &BatchConfig { use_cache: false, ..BatchConfig::default() });
        let cached = collect(&scenario, &targets, &BatchConfig::default());

        prop_assert_eq!(subnet_map(&cached.0), subnet_map(&uncached.0), "seed {}", seed);
        prop_assert_eq!(cached.0.addresses(), uncached.0.addresses(), "seed {}", seed);
        prop_assert!(
            cached.0.probes <= uncached.0.probes,
            "seed {}: cache added probes ({} > {})",
            seed, cached.0.probes, uncached.0.probes
        );
        prop_assert_eq!(uncached.1, sweep::CacheStats::default());
    }

    /// Accounting invariants: every target gets a session, every lookup
    /// is counted exactly once, and hits plus sessions can only exceed
    /// the target count (each hit stands in for work a session skipped).
    #[test]
    fn cache_accounting_is_complete(seed in 64u64..128, jobs in 1usize..=8) {
        let scenario = random_topology(seed, 9);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let (set, stats) =
            collect(&scenario, &targets, &BatchConfig { jobs, ..BatchConfig::default() });

        prop_assert_eq!(set.sessions, targets.len(), "seed {}", seed);
        prop_assert_eq!(stats.lookups(), stats.hits + stats.skips + stats.misses);
        prop_assert!(
            stats.hits + set.sessions as u64 >= targets.len() as u64,
            "seed {}: sessions ran but accounting lost hits", seed
        );
        // Every miss is a hop the engine went on to explore and admit.
        prop_assert!(
            stats.admitted >= stats.misses,
            "seed {}: {} misses but only {} admissions",
            seed, stats.misses, stats.admitted
        );
    }

    /// Thread count is invisible in the output: jobs=1 and jobs=8 cached
    /// runs produce identical collected sets on fluctuation-free nets.
    #[test]
    fn thread_count_is_invisible(seed in 128u64..160) {
        let scenario = random_topology(seed, 10);
        let targets: Vec<Addr> = scenario.targets.iter().copied().take(12).collect();
        let seq = collect(&scenario, &targets, &BatchConfig::default());
        let par = collect(&scenario, &targets, &BatchConfig { jobs: 8, ..BatchConfig::default() });
        prop_assert_eq!(subnet_map(&par.0), subnet_map(&seq.0), "seed {}", seed);
        prop_assert_eq!(par.0.addresses(), seq.0.addresses(), "seed {}", seed);
    }
}
