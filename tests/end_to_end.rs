//! End-to-end regression tests: the full pipeline (topology generation →
//! simulation → tracenet → evaluation) must keep reproducing the paper's
//! headline numbers.

use evalkit::classify::{classify, SubnetTable};
use evalkit::run::{run_tracenet, run_traceroute};
use netsim::{samples, Network};
use probe::Protocol;
use topogen::{geant, internet2, GtSubnet};
use tracenet::TracenetOptions;
use tracenet_suite::trace_once;

fn accuracy_table(scenario: topogen::Scenario) -> SubnetTable {
    let network = scenario.name.clone();
    let vantage = scenario.vantages[0].1;
    let gt: Vec<&GtSubnet> = scenario.ground_truth.of_network(&network).collect();
    let mut net = Network::new(scenario.topology.clone());
    let collected = run_tracenet(
        &mut net,
        vantage,
        &scenario.targets,
        Protocol::Icmp,
        &TracenetOptions::default(),
    );
    SubnetTable::build(&classify(&gt, &collected.records()))
}

/// Table 1's headline: ~73.7% exact including unresponsive subnets,
/// ~94.9% excluding them. Allow a band around the paper's values.
#[test]
fn internet2_exact_match_rates_hold() {
    let table = accuracy_table(internet2(2010));
    let incl = table.exact_rate();
    let excl = table.exact_rate_responsive();
    assert!((0.65..=0.80).contains(&incl), "incl rate {incl}");
    assert!((0.90..=1.0).contains(&excl), "excl rate {excl}");
    // The paper's Table 1 has (almost) no overestimated/merged subnets.
    assert!(table.row_total("ovres") + table.row_total("merg") <= 5);
    assert_eq!(table.row_total("orgl"), 179);
}

/// Table 2's headline: ~53.5% / ~97.3%, dominated by unresponsive
/// subnets.
#[test]
fn geant_exact_match_rates_hold() {
    let table = accuracy_table(geant(2010));
    let incl = table.exact_rate();
    let excl = table.exact_rate_responsive();
    assert!((0.45..=0.62).contains(&incl), "incl rate {incl}");
    assert!((0.92..=1.0).contains(&excl), "excl rate {excl}");
    assert_eq!(table.row_total("orgl"), 271);
    assert!(table.row_total("miss\\unrs") >= 80, "GEANT's missing subnets are mostly unresponsive");
}

/// The Figure 3 scene end-to-end through the public API.
#[test]
fn figure3_session_discovers_the_subnet() {
    let (topo, names) = samples::figure3();
    let report = trace_once(topo, names.addr("vantage"), names.addr("dest"));
    assert!(report.destination_reached);
    let s = report.hops[2].subnet.as_ref().expect("hop 3 subnet");
    assert_eq!(s.record.prefix().to_string(), "10.0.2.0/29");
    assert_eq!(s.record.len(), 4);
    assert_eq!(s.contra_pivot, Some(names.addr("R2.w")));
    // None of the fringe interfaces leaked into S.
    for fringe in ["R2.s", "R7.n", "R4.s", "R6.w"] {
        assert!(!s.record.contains(names.addr(fringe)), "{fringe} leaked into S");
    }
}

/// Headline claim (1) of the paper: a single tracenet session discovers
/// strictly more addresses than a traceroute over the same path.
#[test]
fn tracenet_beats_traceroute_on_address_discovery() {
    let scenario = internet2(7);
    let vantage = scenario.vantages[0].1;
    let targets: Vec<_> = scenario.targets.iter().copied().take(25).collect();
    let mut net = Network::new(scenario.topology.clone());
    let (_, tr_addrs, _) = run_traceroute(
        &mut net,
        vantage,
        &targets,
        Protocol::Icmp,
        &traceroute::TracerouteOptions::default(),
    );
    let tn = run_tracenet(&mut net, vantage, &targets, Protocol::Icmp, &TracenetOptions::default());
    assert!(
        tn.addresses().len() as f64 >= 1.5 * tr_addrs.len() as f64,
        "tracenet {} vs traceroute {}",
        tn.addresses().len(),
        tr_addrs.len()
    );
}

/// §3.6's bound checked end-to-end: every explored subnet of an
/// Internet2 run stays within 7·|S|+7 probes plus the silent-sweep
/// allowance (unassigned addresses probed once per level).
#[test]
fn probe_budget_within_paper_bound() {
    let scenario = internet2(11);
    let vantage = scenario.vantages[0].1;
    let mut net = Network::new(scenario.topology.clone());
    for &target in scenario.targets.iter().take(40) {
        let mut prober = probe::SimProber::new(&mut net, vantage);
        let report = tracenet::Session::new(&mut prober, TracenetOptions::default()).run(target);
        for hop in &report.hops {
            if let Some(s) = &hop.subnet {
                let bound = 7 * s.record.len() as u64 + 7;
                let sweep_allowance = 2 * s.record.prefix().size();
                let spent = hop.cost.position + hop.cost.explore;
                assert!(
                    spent <= bound + sweep_allowance,
                    "{} cost {spent} > bound {bound} + sweep {sweep_allowance}",
                    s.record.prefix()
                );
            }
        }
    }
}

/// Protocol ordering of Table 3, end-to-end on a small network: ICMP
/// collects at least as much as UDP, which beats TCP.
#[test]
fn protocol_ordering_holds() {
    use netsim::{ProtoSet, RouterConfig, TopologyBuilder};
    let mut b = TopologyBuilder::new();
    let v = b.host("vantage");
    let mut cfg = RouterConfig::cooperative();
    cfg.direct_protos = ProtoSet::NO_TCP;
    let r1 = b.router("r1", cfg);
    let mut icmp_only = RouterConfig::cooperative();
    icmp_only.direct_protos = ProtoSet::ICMP_ONLY;
    let r2 = b.router("r2", icmp_only);
    let mk = |s: &str| -> inet::Addr { s.parse().unwrap() };
    let l0 = b.subnet("10.0.0.0/31".parse().unwrap());
    b.attach(v, l0, mk("10.0.0.0")).unwrap();
    b.attach(r1, l0, mk("10.0.0.1")).unwrap();
    let l1 = b.subnet("10.0.0.2/31".parse().unwrap());
    b.attach(r1, l1, mk("10.0.0.2")).unwrap();
    b.attach(r2, l1, mk("10.0.0.3")).unwrap();
    let topo = b.build().unwrap();

    let mut counts = Vec::new();
    for proto in [Protocol::Icmp, Protocol::Udp, Protocol::Tcp] {
        let mut net = Network::new(topo.clone());
        let set = run_tracenet(
            &mut net,
            mk("10.0.0.0"),
            &[mk("10.0.0.3")],
            proto,
            &TracenetOptions::default(),
        );
        counts.push(set.prefixes().len());
    }
    assert!(counts[0] >= counts[1], "ICMP {} < UDP {}", counts[0], counts[1]);
    assert!(counts[1] >= counts[2], "UDP {} < TCP {}", counts[1], counts[2]);
    assert!(counts[0] >= 2, "ICMP collects both links");
}
