//! Cross-vantage integration: several probers sharing one simulated
//! internet, Venn agreement, and scoped-ACL visibility.

use std::collections::BTreeSet;

use evalkit::crossval::VennPartition;
use inet::Prefix;
use netsim::Network;
use probe::{Prober, Protocol, SharedNetwork};
use topogen::{default_isps, isp_internet_with, IspInternetSpec};
use tracenet::{Session, TracenetOptions};

fn pocket_internet(seed: u64) -> topogen::Scenario {
    let mut isps = default_isps();
    isps.truncate(2);
    for isp in &mut isps {
        isp.pops = 5;
        isp.chains_per_pop = 3;
        isp.chain_depth = 2;
        isp.dense_24s = 1;
        isp.large_subnets.clear();
    }
    isp_internet_with(IspInternetSpec { seed, isps, targets_per_isp: 60, target_coverage: 0.6 })
}

/// Three vantages over one shared (mutex-protected) network, interleaved
/// sessions: everything stays consistent and the Venn partition is
/// well-formed.
#[test]
fn three_vantages_share_one_internet() {
    let scenario = pocket_internet(3);
    let shared = SharedNetwork::new(Network::new(scenario.topology.clone()));
    let mut sets: Vec<BTreeSet<Prefix>> = Vec::new();
    for (k, (_, vaddr)) in scenario.vantages.iter().enumerate() {
        let mut prober = shared.prober(*vaddr, Protocol::Icmp).ident(0x100 + k as u16);
        let mut prefixes = BTreeSet::new();
        for &target in scenario.targets.iter().take(40) {
            let report = Session::new(&mut prober, TracenetOptions::default()).run(target);
            for s in report.subnets() {
                if s.record.len() >= 2 {
                    prefixes.insert(s.record.prefix());
                }
            }
        }
        assert!(prober.stats().sent > 0);
        sets.push(prefixes);
    }
    let venn = VennPartition::compute(&sets[0], &sets[1], &sets[2]);
    assert!(venn.total() > 10, "the vantages collected something");
    assert!(venn.abc > 0, "some subnets are seen by everyone");
    let (a, b, c) = venn.set_sizes();
    assert_eq!(a, sets[0].len());
    assert_eq!(b, sets[1].len());
    assert_eq!(c, sets[2].len());
}

/// Scoped ACLs are respected end-to-end: a subnet blocked toward a
/// vantage never shows up in that vantage's collection but is collected
/// by an unblocked one (when responsive and targeted).
#[test]
fn scoped_acls_shape_per_vantage_visibility() {
    let scenario = pocket_internet(4);
    let mut net = Network::new(scenario.topology.clone());
    for (vn, vaddr) in scenario.vantages.clone() {
        let blocked: BTreeSet<Prefix> = scenario
            .topology
            .subnets()
            .iter()
            .filter(|s| s.filtered_sources.contains(&vaddr))
            .map(|s| s.prefix)
            .collect();
        let collected = evalkit::run::run_tracenet(
            &mut net,
            vaddr,
            &scenario.targets,
            Protocol::Icmp,
            &TracenetOptions::default(),
        );
        for p in collected.prefixes() {
            // No collected prefix may be (inside) a blocked subnet.
            assert!(!blocked.iter().any(|b| b.covers(p)), "{vn} collected blocked subnet {p}");
        }
    }
}
